package experiments

import (
	"strings"
	"testing"
)

func TestFutureWorkLiftsSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("application sweep")
	}
	r := FutureWork(Config{Scale: 0.1, Iterations: 3})
	if len(r.Points) != 3 {
		t.Fatalf("%d points", len(r.Points))
	}
	// At the largest machine the update protocol must beat the baseline.
	if g := r.Gain(); g <= 1.0 {
		t.Fatalf("update-protocol gain %.2f at 128 nodes, want > 1", g)
	}
	for _, p := range r.Points {
		// Remote traffic must drop.
		if p.RemoteMissUpd >= p.RemoteMissBase {
			t.Errorf("nodes=%d: remote misses did not drop: %.4f -> %.4f",
				p.Nodes, p.RemoteMissBase, p.RemoteMissUpd)
		}
		if p.UpdateWrites == 0 {
			t.Errorf("nodes=%d: no update writes", p.Nodes)
		}
	}
	// The benefit must grow with machine size (it targets saturation).
	first := r.Points[0].UpdateSpeedup / r.Points[0].BaseSpeedup
	last := r.Points[len(r.Points)-1].UpdateSpeedup / r.Points[len(r.Points)-1].BaseSpeedup
	if last <= first {
		t.Errorf("gain does not grow with machine size: %.2f -> %.2f", first, last)
	}
	if !strings.Contains(r.Render(), "update-type protocol") {
		t.Error("render")
	}
}
