package experiments

// Determinism-equivalence for the experiment sweeps: every Render()
// string — the suite's actual observable output — must be
// byte-identical whether the runs execute sequentially or sharded
// across eight workers. Together with the fuzz report test in
// internal/fuzz and the calendar-queue differential test in
// internal/sim this locks down the parallel-runner rework; the cheap
// half runs under -race in CI's race job.

import (
	"testing"

	"cenju4/internal/npb"
)

func diffRender(t *testing.T, name, seq, par string) {
	t.Helper()
	if seq != par {
		t.Errorf("%s: parallel render differs from sequential:\n--- sequential ---\n%s--- parallel ---\n%s",
			name, seq, par)
	}
}

func TestParallelRenderByteIdentical(t *testing.T) {
	seq := Config{Scale: 0.03, Iterations: 1, Trials: 40, Seed: 3, Parallel: 1}
	par := seq
	par.Parallel = 8
	diffRender(t, "fig4", Figure4(seq).Render(), Figure4(par).Render())
	diffRender(t, "ablation-threshold",
		AblationSinglecastThreshold(seq, 32).Render(), AblationSinglecastThreshold(par, 32).Render())
	diffRender(t, "ablation-imprecision",
		AblationImprecision(seq, 128, 7).Render(), AblationImprecision(par, 128, 7).Render())
	if testing.Short() {
		return // the application sweeps below dominate the runtime
	}
	diffRender(t, "fig11", Figure11(seq).Render(), Figure11(par).Render())
	diffRender(t, "fig12", Figure12(seq).Render(), Figure12(par).Render())
	diffRender(t, "table3", Table3(seq).Render(), Table3(par).Render())
	diffRender(t, "table4", Table4(seq).Render(), Table4(par).Render())
}

// TestRunJobsPanicPropagates: a panicking run must surface to the
// caller with its index and label context, matching the old serial
// loops' behavior.
func TestRunJobsPanicPropagates(t *testing.T) {
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("worker panic did not propagate")
		}
		if s, ok := v.(string); !ok || s == "" {
			t.Fatalf("panic value %v (%T), want descriptive string", v, v)
		}
	}()
	// npb.Build rejects the seq variant on more than one node, which
	// makes runOne panic inside the worker.
	runJobs(Config{Parallel: 4}, []appJob{{app: npb.CG, v: npb.Seq, nodes: 2}})
}
