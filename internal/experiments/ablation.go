package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"cenju4/internal/core"
	"cenju4/internal/machine"
	"cenju4/internal/runner"
	"cenju4/internal/sim"
	"cenju4/internal/topology"
)

// AblationNackResult compares the queuing protocol against the
// DASH-style nack protocol under hot-block contention (Figure 6's
// scenario: many nodes storing to one block).
type AblationNackResult struct {
	Nodes int
	// Queuing protocol.
	QueuingTime      sim.Time
	QueuingWorstCase sim.Time // worst single-access latency
	QueuedRequests   uint64
	QueueHighWater   int
	// Nack protocol.
	NackTime      sim.Time
	NackWorstCase sim.Time
	Nacks         uint64
	Retries       uint64
	MaxRetries    int
}

// AblationNack runs the hot-block storm under both protocol modes.
func AblationNack(nodes int) AblationNackResult {
	res := AblationNackResult{Nodes: nodes}
	run := func(mode core.Mode) (total, worst sim.Time, st core.Stats, agg func() (uint64, uint64, int)) {
		m := machine.New(machine.Config{Nodes: nodes, Multicast: true, Mode: mode})
		eng := m.Engine()
		addr := topology.SharedAddr(0, 0)
		var worstLat sim.Time
		for i := 0; i < nodes; i++ {
			node := topology.NodeID(i)
			start := eng.Now()
			m.Controller(node).Request(addr, true, func() {
				if lat := eng.Now() - start; lat > worstLat {
					worstLat = lat
				}
			})
		}
		eng.Run()
		agg = func() (nacks, retries uint64, maxRetries int) {
			for i := 0; i < nodes; i++ {
				s := m.Controller(topology.NodeID(i)).Stats()
				nacks += s.Nacks
				retries += s.Retries
				if s.MaxRetries > maxRetries {
					maxRetries = s.MaxRetries
				}
			}
			return
		}
		return eng.Now(), worstLat, m.Controller(0).Stats(), agg
	}
	var st core.Stats
	var agg func() (uint64, uint64, int)
	res.QueuingTime, res.QueuingWorstCase, st, _ = run(core.ModeQueuing)
	res.QueuedRequests = st.QueuedRequests
	res.QueueHighWater = st.QueueHighWater
	res.NackTime, res.NackWorstCase, _, agg = run(core.ModeNack)
	res.Nacks, res.Retries, res.MaxRetries = agg()
	return res
}

// Render prints the comparison.
func (r AblationNackResult) Render() string {
	t := &table{header: []string{"protocol", "completion", "worst access", "nacks", "retries", "max retries", "queued", "queue HW"}}
	t.add("queuing (Cenju-4)", us(r.QueuingTime), us(r.QueuingWorstCase), "0", "0", "0",
		fmt.Sprintf("%d", r.QueuedRequests), fmt.Sprintf("%d", r.QueueHighWater))
	t.add("nack (DASH-style)", us(r.NackTime), us(r.NackWorstCase),
		fmt.Sprintf("%d", r.Nacks), fmt.Sprintf("%d", r.Retries), fmt.Sprintf("%d", r.MaxRetries), "0", "0")
	return fmt.Sprintf("Ablation: hot-block storm, %d nodes storing to one block\n%s", r.Nodes, t.String())
}

// ThresholdPoint is one (threshold, sharers) -> latency measurement.
type ThresholdPoint struct {
	Threshold int
	Sharers   int
	Latency   sim.Time
}

// AblationThresholdResult explores the singlecast threshold the paper
// mentions but did not implement: using singlecast invalidations up to
// k targets instead of only one.
type AblationThresholdResult struct {
	Nodes  int
	Points []ThresholdPoint
}

// AblationSinglecastThreshold measures store latency across thresholds.
// Every (threshold, sharers) cell builds its own machine, so the grid
// shards across cfg.Parallel workers.
func AblationSinglecastThreshold(cfg Config, nodes int) AblationThresholdResult {
	res := AblationThresholdResult{Nodes: nodes}
	type cell struct{ thr, k int }
	var cells []cell
	for _, thr := range []int{1, 2, 4, 8} {
		for _, k := range []int{2, 3, 5, 9, 17} {
			if k >= nodes {
				continue
			}
			cells = append(cells, cell{thr, k})
		}
	}
	points, panics := runner.Map(cfg.parOpts(), len(cells), func(i int) ThresholdPoint {
		c := cells[i]
		m := machine.New(machine.Config{Nodes: nodes, Multicast: true, SinglecastThreshold: c.thr})
		eng := m.Engine()
		addr := topology.SharedAddr(0, 0)
		for i := 1; i <= c.k; i++ {
			m.Controller(topology.NodeID(i)).Request(addr, false, func() {})
			eng.Run()
		}
		var end sim.Time
		start := eng.Now()
		m.Controller(1).Request(addr, true, func() { end = eng.Now() })
		eng.Run()
		return ThresholdPoint{c.thr, c.k, end - start}
	})
	rethrow(panics)
	res.Points = points
	return res
}

// Render prints the threshold sweep.
func (r AblationThresholdResult) Render() string {
	t := &table{header: []string{"threshold", "sharers", "store latency"}}
	for _, p := range r.Points {
		t.add(fmt.Sprintf("%d", p.Threshold), fmt.Sprintf("%d", p.Sharers), us(p.Latency))
	}
	return fmt.Sprintf("Ablation: singlecast threshold (\"possible ... though not implemented\"), %d nodes\n%s",
		r.Nodes, t.String())
}

// ImprecisionPoint measures the invalidation overshoot of the
// bit-pattern map on the running protocol.
type ImprecisionPoint struct {
	Sharers   int
	Clustered bool
	// Targets is the number of invalidation targets actually addressed
	// (the decoded superset).
	Targets int
	// Latency of the triggering store.
	Latency sim.Time
}

// AblationImprecisionResult quantifies what the bit-pattern structure's
// imprecision costs in delivered invalidations and store latency, for
// sharers scattered across the machine versus clustered in one 64-node
// group (the multi-user scenario where the scheme shines).
type AblationImprecisionResult struct {
	Nodes  int
	Points []ImprecisionPoint
}

// AblationImprecision runs stores against blocks with k true sharers.
// Each cell draws its sharer placement from its own *rand.Rand, seeded
// from (seed, cell index) via runner.DeriveSeed, so cells never share
// a generator and the sweep shards across cfg.Parallel workers while a
// run stays reproduced by its arguments alone (the determinism
// analyzer forbids the global math/rand source). cmd/cenju4-bench
// plumbs its -ablation-seed flag here; 7 is the historical default.
func AblationImprecision(cfg Config, nodes int, seed int64) AblationImprecisionResult {
	res := AblationImprecisionResult{Nodes: nodes}
	type cell struct {
		clustered bool
		k         int
	}
	var cells []cell
	for _, clustered := range []bool{false, true} {
		for _, k := range []int{4, 8, 16, 32, 64} {
			if k >= nodes {
				continue
			}
			cells = append(cells, cell{clustered, k})
		}
	}
	points, panics := runner.Map(cfg.parOpts(), len(cells), func(i int) ImprecisionPoint {
		c := cells[i]
		rng := rand.New(rand.NewSource(int64(runner.DeriveSeed(uint64(seed), i))))
		m := machine.New(machine.Config{Nodes: nodes, Multicast: true})
		eng := m.Engine()
		addr := topology.SharedAddr(0, 0)
		span := nodes - 1
		if c.clustered && span > 64 {
			span = 64
		}
		seen := map[int]bool{}
		var sharers []topology.NodeID
		for len(sharers) < c.k {
			n := 1 + rng.Intn(span)
			if !seen[n] {
				seen[n] = true
				sharers = append(sharers, topology.NodeID(n))
			}
		}
		for _, n := range sharers {
			m.Controller(n).Request(addr, false, func() {})
			eng.Run()
		}
		var end sim.Time
		start := eng.Now()
		m.Controller(sharers[0]).Request(addr, true, func() { end = eng.Now() })
		eng.Run()
		st := m.Controller(0).Stats()
		return ImprecisionPoint{
			Sharers:   c.k,
			Clustered: c.clustered,
			Targets:   int(st.InvTargets),
			Latency:   end - start,
		}
	})
	rethrow(panics)
	res.Points = points
	return res
}

// Render prints the overshoot table.
func (r AblationImprecisionResult) Render() string {
	t := &table{header: []string{"sharers", "placement", "inv targets", "overshoot", "store latency"}}
	for _, p := range r.Points {
		place := "scattered"
		if p.Clustered {
			place = "64-node group"
		}
		t.add(fmt.Sprintf("%d", p.Sharers), place, fmt.Sprintf("%d", p.Targets),
			fmt.Sprintf("%.1fx", float64(p.Targets)/float64(p.Sharers)),
			us(p.Latency))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: bit-pattern imprecision on the running protocol, %d nodes\n", r.Nodes)
	b.WriteString(t.String())
	b.WriteString("\nClustering sharers (the multi-user partition case) keeps the decoded\nsuperset small — the paper's Figure 4(b) argument, here measured as\ndelivered invalidations.\n")
	return b.String()
}
