package experiments

import (
	"strings"
	"testing"
)

func TestAblationNack(t *testing.T) {
	r := AblationNack(32)
	if r.Nacks == 0 || r.Retries == 0 {
		t.Fatalf("nack mode saw no contention: %+v", r)
	}
	if r.QueuedRequests == 0 {
		t.Fatal("queuing mode queued nothing")
	}
	if r.QueueHighWater > 32*4 {
		t.Fatalf("queue high water %d exceeds bound", r.QueueHighWater)
	}
	// The queuing protocol's worst-case access must not be worse than
	// the nack protocol's (bounded waiting vs retry roulette).
	if r.QueuingWorstCase > r.NackWorstCase {
		t.Errorf("queuing worst case %v > nack worst case %v", r.QueuingWorstCase, r.NackWorstCase)
	}
	if !strings.Contains(r.Render(), "queuing (Cenju-4)") {
		t.Error("render missing rows")
	}
}

func TestAblationSinglecastThreshold(t *testing.T) {
	r := AblationSinglecastThreshold(Config{}, 64)
	if len(r.Points) == 0 {
		t.Fatal("no points")
	}
	// At 3 sharers (2 invalidation targets), a threshold of 4 uses
	// singlecasts and must be at least as fast as threshold 1's
	// multicast+gather (that is the optimization the paper suggests).
	var thr1, thr4 ThresholdPoint
	for _, p := range r.Points {
		if p.Sharers == 3 && p.Threshold == 1 {
			thr1 = p
		}
		if p.Sharers == 3 && p.Threshold == 4 {
			thr4 = p
		}
	}
	if thr1.Latency == 0 || thr4.Latency == 0 {
		t.Fatal("missing threshold points")
	}
	if thr4.Latency > thr1.Latency {
		t.Errorf("threshold 4 (%v) slower than threshold 1 (%v) at 3 sharers", thr4.Latency, thr1.Latency)
	}
	if !strings.Contains(r.Render(), "threshold") {
		t.Error("render")
	}
}

func TestAblationImprecision(t *testing.T) {
	r := AblationImprecision(Config{}, 1024, 7)
	if len(r.Points) != 10 {
		t.Fatalf("%d points", len(r.Points))
	}
	// Overshoot must never lose an invalidation target (>= sharers; the
	// writer is among the sharers and also receives one).
	for _, p := range r.Points {
		if p.Targets < p.Sharers {
			t.Fatalf("targets %d < sharers %d", p.Targets, p.Sharers)
		}
	}
	// Clustered placement must overshoot no more than scattered at 32
	// sharers.
	var scat, clus int
	for _, p := range r.Points {
		if p.Sharers == 32 {
			if p.Clustered {
				clus = p.Targets
			} else {
				scat = p.Targets
			}
		}
	}
	if clus > scat {
		t.Errorf("clustered targets %d > scattered %d", clus, scat)
	}
	if !strings.Contains(r.Render(), "overshoot") {
		t.Error("render")
	}
}
