package experiments

import (
	"strings"
	"testing"

	"cenju4/internal/npb"
)

func TestTable1Render(t *testing.T) {
	r := Table1()
	if len(r.Rows) != 6 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	out := r.Render()
	for _, want := range []string{"Full Map", "Cenju-4", "Origin"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable2WithinCalibrationBand(t *testing.T) {
	r := Table2()
	if err := r.MaxError(); err > 0.05 {
		t.Fatalf("max error %.1f%% exceeds 5%% band\n%s", 100*err, r.Render())
	}
	out := r.Render()
	if !strings.Contains(out, "a) private") || !strings.Contains(out, "e) shared remote(dirty)") {
		t.Error("render missing rows")
	}
}

func TestFigure4Shapes(t *testing.T) {
	r := Figure4(Config{Trials: 40})
	names := r.SchemeNames()
	if len(names) != 3 {
		t.Fatalf("scheme names = %v", names)
	}
	// Panel B at 32 sharers: bit-pattern beats coarse vector and
	// hierarchical bit-map (the paper's multi-user argument).
	at := func(name string, sharers int) float64 {
		for _, p := range r.PanelB[name] {
			if p.Sharers == sharers {
				return p.Represented
			}
		}
		t.Fatalf("no point for %s at %d sharers", name, sharers)
		return 0
	}
	bp := at("bit-pattern (42b)", 32)
	cv := at("coarse vector (32b)", 32)
	hb := at("hierarchical bit-map (24b)", 32)
	if bp >= cv || bp >= hb {
		t.Errorf("panel B at 32 sharers: bit-pattern %.0f vs coarse %.0f, hierarchical %.0f", bp, cv, hb)
	}
	if !strings.Contains(r.Render(), "(b) sharers chosen from a 128-node group") {
		t.Error("render missing panel b")
	}
}

func TestFigure10Shapes(t *testing.T) {
	r := Figure10()
	if len(r.Series) != 4 {
		t.Fatalf("%d series", len(r.Series))
	}
	// With multicast, the 1023-sharer latency must be within ~2x of the
	// paper's 6.3us estimate; without, within ~2x of 184us; and the
	// no-multicast end point must be an order of magnitude worse.
	mc, ok := r.EndPoint(1024, true)
	if !ok {
		t.Fatal("no multicast end point")
	}
	sc, ok := r.EndPoint(1024, false)
	if !ok {
		t.Fatal("no singlecast end point")
	}
	if mc.Latency < r.PaperMulticast1024/2 || mc.Latency > r.PaperMulticast1024*2 {
		t.Errorf("multicast end point %v vs paper %v", mc.Latency, r.PaperMulticast1024)
	}
	if sc.Latency < r.PaperSinglecast1024/2 || sc.Latency > r.PaperSinglecast1024*2 {
		t.Errorf("singlecast end point %v vs paper %v", sc.Latency, r.PaperSinglecast1024)
	}
	if sc.Latency < 10*mc.Latency {
		t.Errorf("singlecast %v not >> multicast %v", sc.Latency, mc.Latency)
	}
	// Store latency jumps when sharers exceed 2 (multicast kicks in).
	for _, s := range r.Series {
		if !s.Multicast || s.Nodes != 1024 {
			continue
		}
		var l2, l4 int64
		for _, p := range s.Points {
			if p.Sharers == 2 {
				l2 = int64(p.Latency)
			}
			if p.Sharers == 4 {
				l4 = int64(p.Latency)
			}
		}
		if l4 <= l2 {
			t.Errorf("no jump past 2 sharers: %d -> %d", l2, l4)
		}
	}
	if !strings.Contains(r.Render(), "singlecast (estimated comparison)") {
		t.Error("render missing singlecast series")
	}
}

func TestFigure11Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("application sweep")
	}
	r := Figure11(Config{Scale: 0.05, Iterations: 2})
	if len(r.Entries) != 20 {
		t.Fatalf("%d entries, want 20", len(r.Entries))
	}
	for _, app := range npb.Apps() {
		d1, _ := r.Find(app, npb.DSM1, true)
		d2, _ := r.Find(app, npb.DSM2, true)
		mpi, _ := r.Find(app, npb.MPI, false)
		// Rewriting: dsm(1) < dsm(2) < mpi.
		if !(d1.RewriteRatio < d2.RewriteRatio && d2.RewriteRatio < mpi.RewriteRatio) {
			t.Errorf("%v rewrite ordering: %.2f %.2f %.2f", app, d1.RewriteRatio, d2.RewriteRatio, mpi.RewriteRatio)
		}
		// Efficiency: dsm(2) >= dsm(1) for all apps.
		if d2.Efficiency < d1.Efficiency*0.95 {
			t.Errorf("%v: dsm(2) eff %.2f < dsm(1) %.2f", app, d2.Efficiency, d1.Efficiency)
		}
		// Mappings help the grid apps in dsm(1).
		if app == npb.BT || app == npb.SP {
			nomap, _ := r.Find(app, npb.DSM1, false)
			if d1.Efficiency <= nomap.Efficiency {
				t.Errorf("%v: mapping did not help dsm(1): %.3f vs %.3f", app, d1.Efficiency, nomap.Efficiency)
			}
		}
	}
	out := r.Render()
	if !strings.Contains(out, "rewriting ratio") || !strings.Contains(out, "parallel efficiency") {
		t.Error("render missing panels")
	}
}

func TestFigure12CGSaturates(t *testing.T) {
	if testing.Short() {
		t.Skip("application sweep")
	}
	r := Figure12(Config{Scale: 0.05, Iterations: 2})
	cg, ok := r.Find(npb.CG)
	if !ok {
		t.Fatal("no CG series")
	}
	last := len(cg.Speedups) - 1
	// CG saturation: going 64 -> 128 nodes must gain little (< 1.4x).
	if cg.Speedups[last]/cg.Speedups[last-1] > 1.4 {
		t.Errorf("CG did not saturate: %v", cg.Speedups)
	}
	bt, _ := r.Find(npb.BT)
	if bt.Speedups[len(bt.Speedups)-1] <= bt.Speedups[0] {
		t.Errorf("BT does not scale: %v", bt.Speedups)
	}
	// Every app must speed up with more nodes initially.
	for _, s := range r.Series {
		if s.Speedups[1] <= s.Speedups[0] {
			t.Errorf("%v: no speedup from %d to %d nodes: %v", s.App, s.Nodes[0], s.Nodes[1], s.Speedups)
		}
	}
}

func TestTable3Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("application sweep")
	}
	r := Table3(Config{Scale: 0.05, Iterations: 2})
	if len(r.Rows) != 16 {
		t.Fatalf("%d rows, want 16", len(r.Rows))
	}
	for _, app := range []npb.App{npb.BT, npb.SP, npb.FT} {
		un, _ := r.Find(app, npb.DSM1, false)
		ma, _ := r.Find(app, npb.DSM1, true)
		if ma.Remote >= un.Remote {
			t.Errorf("%v dsm(1): mapping did not cut remote share: %.2f vs %.2f", app, ma.Remote, un.Remote)
		}
		d2, _ := r.Find(app, npb.DSM2, true)
		if d2.Private <= ma.Private {
			t.Errorf("%v: dsm(2) private share %.2f <= dsm(1) %.2f", app, d2.Private, ma.Private)
		}
	}
	// CG: mapping has almost no effect.
	cgU, _ := r.Find(npb.CG, npb.DSM1, false)
	cgM, _ := r.Find(npb.CG, npb.DSM1, true)
	if diff := cgU.MissRatio - cgM.MissRatio; diff > 0.2*cgU.MissRatio || diff < -0.2*cgU.MissRatio {
		t.Errorf("CG mapping changed miss ratio: %.4f vs %.4f", cgU.MissRatio, cgM.MissRatio)
	}
}

func TestTable4Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("application sweep")
	}
	r := Table4(Config{Scale: 0.05, Iterations: 2})
	if len(r.Rows) != 8 {
		t.Fatalf("%d rows, want 8", len(r.Rows))
	}
	for _, app := range npb.Apps() {
		small, _ := r.Find(app, 16)
		big, _ := r.Find(app, paperNodes(app))
		// Execution time must fall with more nodes.
		if big.ExecTime >= small.ExecTime {
			t.Errorf("%v: time did not fall: %v -> %v", app, small.ExecTime, big.ExecTime)
		}
		// Sync fraction rises with machine size.
		if big.SyncFrac <= small.SyncFrac {
			t.Errorf("%v: sync fraction fell: %.3f -> %.3f", app, small.SyncFrac, big.SyncFrac)
		}
	}
	// CG: remote miss share rises sharply with machine size (the
	// paper's saturation diagnosis).
	cgSmall, _ := r.Find(npb.CG, 16)
	cgBig, _ := r.Find(npb.CG, 128)
	if cgBig.MissRemote <= cgSmall.MissRemote {
		t.Errorf("CG remote miss share did not rise: %.2f -> %.2f", cgSmall.MissRemote, cgBig.MissRemote)
	}
}

func TestQuickFullPresets(t *testing.T) {
	q, f := Quick(), Full()
	if q.Scale >= f.Scale {
		t.Error("quick scale not smaller")
	}
	var zero Config
	d := zero.withDefaults()
	if d.Scale == 0 || d.Iterations == 0 || d.Trials == 0 {
		t.Error("defaults not applied")
	}
}
