package experiments

import (
	"strings"
	"testing"

	"cenju4/internal/npb"
	"cenju4/internal/trace"
)

// observedSweep runs a cheap two-job application sweep with full
// observation at the given parallelism and renders the merged registry
// and trace export.
func observedSweep(t *testing.T, parallel int) (report, traceJSON string) {
	t.Helper()
	cfg := Config{Scale: 0.02, Iterations: 1, Trials: 10, Seed: 3,
		Parallel: parallel, Observe: &Observation{TraceCap: 1 << 16}}
	jobs := []appJob{
		{app: npb.CG, v: npb.DSM1, nodes: 4, mapped: false},
		{app: npb.FT, v: npb.DSM2, nodes: 4, mapped: true},
	}
	runJobs(cfg, jobs)
	ob := cfg.Observe
	if ob.Metrics == nil || ob.Metrics.Len() == 0 {
		t.Fatal("sweep produced no metrics")
	}
	if len(ob.Streams) != len(jobs) {
		t.Fatalf("streams = %d, want %d", len(ob.Streams), len(jobs))
	}
	var j strings.Builder
	if _, err := trace.WriteChrome(&j, ob.Streams...); err != nil {
		t.Fatal(err)
	}
	return ob.Metrics.Report(), j.String()
}

// TestObservationParallelEquivalent is the acceptance criterion in
// miniature: metrics report and trace export byte-identical between
// -parallel 1 and -parallel 8. Runs under -race in CI.
func TestObservationParallelEquivalent(t *testing.T) {
	seqReport, seqTrace := observedSweep(t, 1)
	parReport, parTrace := observedSweep(t, 8)
	if seqReport != parReport {
		t.Errorf("metrics report differs across parallelism:\n--- sequential ---\n%s--- parallel ---\n%s",
			seqReport, parReport)
	}
	if seqTrace != parTrace {
		t.Error("trace export differs across parallelism")
	}
}

// Observation is optional: a nil Observe must not change behavior.
func TestObservationAbsentIsNoop(t *testing.T) {
	cfg := Config{Scale: 0.02, Iterations: 1, Parallel: 2}
	runs := runJobs(cfg, []appJob{{app: npb.CG, v: npb.DSM1, nodes: 4}})
	if len(runs) != 1 || runs[0].obs != nil {
		t.Fatal("unobserved run carried an observation payload")
	}
}
