// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4): Table 1 (directory scheme characteristics),
// Figure 4 (node-map precision), Table 2 (load latencies), Figure 10
// (store latencies with and without multicast/gathering), Figure 11
// (rewriting ratio and parallel efficiency), Figure 12 (speedups), and
// Tables 3 and 4 (application characteristics).
//
// Each experiment returns a structured result with a Render method that
// prints the same rows or series the paper reports, side by side with
// the paper's published values where the paper gives them numerically.
// cmd/cenju4-bench drives them all; bench_test.go wraps each in a
// testing.B benchmark.
package experiments

import (
	"fmt"
	"strings"

	"cenju4/internal/faults"
	"cenju4/internal/machine"
	"cenju4/internal/metrics"
	"cenju4/internal/npb"
	"cenju4/internal/runner"
	"cenju4/internal/sim"
	"cenju4/internal/trace"
)

// Config scales the application experiments (the latency and precision
// experiments are cheap and ignore it).
type Config struct {
	// Scale is the problem size relative to Class A.
	Scale float64
	// Iterations is the number of outer time steps per run.
	Iterations int
	// Trials is the Monte-Carlo trial count for Figure 4.
	Trials int
	// Seed drives the Figure 4 Monte-Carlo sweeps (panel (a) uses
	// Seed, panel (b) Seed+1). Randomness never comes from the global
	// math/rand source — the determinism analyzer forbids it — so a
	// run is reproduced by its config alone.
	Seed int64
	// Parallel is the number of worker goroutines the experiments shard
	// their independent simulation runs across (0 = GOMAXPROCS, 1 =
	// sequential). Every run builds its own machine and derives its
	// inputs from its run index, and results merge in run order, so the
	// rendered tables are byte-identical at every setting (asserted by
	// parallel_test.go, under -race in CI).
	Parallel int
	// IntraParallel additionally shards each application run's simulated
	// nodes over K conservative-PDES partitions (see internal/psim).
	// Results stay byte-identical; runs that cannot shard — the mpi
	// variants (blocking Recv has zero lookahead), fault plans, traced
	// runs, and machines smaller than K — silently fall back to the
	// sequential kernel. Shard workers are budgeted with
	// runner.NestedBudget so Parallel x IntraParallel never oversubscribes
	// GOMAXPROCS.
	IntraParallel int
	// Fault is the deterministic fault plan threaded into every
	// machine-building application run (zero = fault-free). Use
	// recoverable plans only: the application experiments assert
	// completion and coherence, so an unrecoverable plan trips the
	// machine watchdog and aborts the sweep.
	Fault faults.Spec
	// Observe, when non-nil, collects observability output from the
	// machine-building sweeps (the application experiments and the
	// future-work comparison; the analytic latency/precision experiments
	// have no full machines to observe). Workers return per-run payloads
	// and the sweep absorbs them in run order, so the merged registry and
	// stream list are identical at every Parallel setting.
	Observe *Observation
}

// Observation gathers a sweep's observability output: the merged
// metrics registry and, when TraceCap is positive, one protocol event
// stream per machine run for the Chrome-trace exporter.
type Observation struct {
	// TraceCap bounds each run's trace collector (0 disables trace
	// collection; metrics are always collected).
	TraceCap int
	// Metrics is the merged registry, created on first absorb.
	Metrics *metrics.Registry
	// Streams holds one entry per machine run, in run order.
	Streams []trace.Stream
}

// runObservation is the per-run payload a worker returns; the sweep
// absorbs it after the parallel map so no worker writes shared state.
type runObservation struct {
	reg    *metrics.Registry
	stream trace.Stream
}

// observePre installs a bounded trace collector on m when tracing is
// requested; nil otherwise.
func (c Config) observePre(m *machine.Machine) *trace.Collector {
	if c.Observe == nil || c.Observe.TraceCap <= 0 {
		return nil
	}
	col := trace.NewCollector(c.Observe.TraceCap)
	m.SetTracer(col.Tracer())
	return col
}

// observePost packages a finished run's registry and (optional) stream.
func (c Config) observePost(m *machine.Machine, col *trace.Collector, label string) *runObservation {
	if c.Observe == nil {
		return nil
	}
	o := &runObservation{reg: m.Metrics()}
	if col != nil {
		o.stream = col.Stream(label)
	}
	return o
}

// absorb merges one run's payload, in the caller's (run) order.
func (ob *Observation) absorb(o *runObservation) {
	if ob == nil || o == nil {
		return
	}
	if ob.Metrics == nil {
		ob.Metrics = metrics.New()
	}
	ob.Metrics.Merge(o.reg)
	if ob.TraceCap > 0 {
		ob.Streams = append(ob.Streams, o.stream)
	}
}

// Quick returns a configuration that runs the full suite in tens of
// seconds (for tests and smoke runs). Shapes hold; absolute efficiency
// values are closer to the paper under Full.
func Quick() Config { return Config{Scale: 0.08, Iterations: 2, Trials: 60, Seed: 1} }

// Full returns the configuration used for EXPERIMENTS.md: Class A scale
// and enough iterations to amortize cold misses.
func Full() Config { return Config{Scale: 1.0, Iterations: 4, Trials: 200, Seed: 1} }

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = Quick().Scale
	}
	if c.Iterations == 0 {
		c.Iterations = Quick().Iterations
	}
	if c.Trials == 0 {
		c.Trials = Quick().Trials
	}
	if c.Seed == 0 {
		c.Seed = Quick().Seed
	}
	return c
}

// parOpts is the runner configuration for an experiment sweep.
func (c Config) parOpts() runner.Options { return runner.Options{Parallel: c.Parallel} }

// intraFor resolves the PDES shard count for one application run,
// falling back to the sequential kernel (1) for runs that cannot
// shard. The digest guarantee makes the fallback invisible in output.
func (c Config) intraFor(v npb.Variant, nodes int) int {
	k := c.IntraParallel
	if k <= 1 {
		return 1
	}
	if v == npb.MPI || c.Fault != (faults.Spec{}) {
		return 1
	}
	if c.Observe != nil && c.Observe.TraceCap > 0 {
		return 1
	}
	// Round down to the largest power of two that divides the machine.
	for k&(k-1) != 0 {
		k &= k - 1
	}
	for k > nodes {
		k >>= 1
	}
	return k
}

// rethrow propagates the first captured worker panic. Experiment runs
// signal invalid configurations and coherence violations by panicking
// (see runOne), and the serial loops let those panics reach the caller;
// the worker pool captures them instead, so re-raise here to keep the
// contract.
func rethrow(panics []*runner.Panic) {
	if len(panics) > 0 {
		panic(panics[0].Error())
	}
}

// pct formats a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// us formats a latency in microseconds.
func us(t sim.Time) string { return fmt.Sprintf("%.2fus", t.Microseconds()) }

// table is a minimal text-table builder used by the Render methods.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}
