package experiments

import (
	"fmt"
	"strings"

	"cenju4/internal/machine"
	"cenju4/internal/sim"
	"cenju4/internal/timing"
	"cenju4/internal/topology"
)

// machineParams returns the calibrated hardware constants every probe
// machine uses.
func machineParams() timing.Params { return timing.Default() }

// probe runs isolated single-access measurements on an otherwise idle
// machine, as the paper's latency measurements do.
type probe struct {
	m *machine.Machine
}

func newProbe(nodes int, multicast bool) *probe {
	return &probe{m: machine.New(machine.Config{Nodes: nodes, Multicast: multicast})}
}

// access runs one access to completion and returns its latency.
func (p *probe) access(node topology.NodeID, addr topology.Addr, store bool) sim.Time {
	eng := p.m.Engine()
	start := eng.Now()
	var end sim.Time
	p.m.Controller(node).Request(addr, store, func() { end = eng.Now() })
	eng.Run()
	return end - start
}

func (p *probe) block(home topology.NodeID) topology.Addr {
	return topology.SharedAddr(home, 0)
}

// Table2Row identifies one row of Table 2.
type Table2Row string

// The rows of Table 2.
const (
	RowPrivate     Table2Row = "a) private"
	RowLocalClean  Table2Row = "b) shared local(clean)"
	RowRemoteClean Table2Row = "c) shared remote(clean)"
	RowLocalDirty  Table2Row = "d) shared local(dirty)"
	RowRemoteDirty Table2Row = "e) shared remote(dirty)"
)

// Table2Rows lists the rows in paper order.
func Table2Rows() []Table2Row {
	return []Table2Row{RowPrivate, RowLocalClean, RowRemoteClean, RowLocalDirty, RowRemoteDirty}
}

// Table2Result holds measured and published load latencies (ns) per
// network stage count.
type Table2Result struct {
	Stages   []int // 2, 4, 6
	Nodes    []int // 16, 128, 1024
	Measured map[Table2Row][]sim.Time
	Paper    map[Table2Row][]sim.Time
}

// paperTable2 is Table 2 of the paper, in nanoseconds.
var paperTable2 = map[Table2Row][]sim.Time{
	RowPrivate:     {470, 470, 470},
	RowLocalClean:  {610, 610, 610},
	RowRemoteClean: {1690, 2210, 2730},
	RowLocalDirty:  {1900, 2480, 3060},
	RowRemoteDirty: {3120, 4170, 5220},
}

// Table2 measures the five load-latency rows at 2-, 4- and 6-stage
// network sizes.
func Table2() Table2Result {
	res := Table2Result{
		Stages:   []int{2, 4, 6},
		Nodes:    []int{16, 128, 1024},
		Measured: make(map[Table2Row][]sim.Time),
		Paper:    paperTable2,
	}
	for _, nodes := range res.Nodes {
		// a) private: served by the node's own memory without the DSM.
		p := newProbe(nodes, true)
		params := machineParams()
		res.Measured[RowPrivate] = append(res.Measured[RowPrivate], params.ProcOverhead+params.MemAccess)

		// b) shared local clean: load by the home node, nobody caching.
		res.Measured[RowLocalClean] = append(res.Measured[RowLocalClean],
			p.access(0, p.block(0), false))

		// c) shared remote clean.
		p = newProbe(nodes, true)
		res.Measured[RowRemoteClean] = append(res.Measured[RowRemoteClean],
			p.access(1, p.block(0), false))

		// d) shared local dirty: dirty in node 1's cache, load by home 0.
		p = newProbe(nodes, true)
		p.access(1, p.block(0), true)
		res.Measured[RowLocalDirty] = append(res.Measured[RowLocalDirty],
			p.access(0, p.block(0), false))

		// e) shared remote dirty: dirty at node 1, load by node 2.
		p = newProbe(nodes, true)
		p.access(1, p.block(0), true)
		res.Measured[RowRemoteDirty] = append(res.Measured[RowRemoteDirty],
			p.access(2, p.block(0), false))
	}
	return res
}

// Render prints the table with paper values and deltas.
func (r Table2Result) Render() string {
	t := &table{header: []string{"row", "2st meas", "2st paper", "4st meas", "4st paper", "6st meas", "6st paper", "max err"}}
	for _, row := range Table2Rows() {
		cells := []string{string(row)}
		maxErr := 0.0
		for i := range r.Stages {
			m, p := r.Measured[row][i], r.Paper[row][i]
			cells = append(cells, fmt.Sprintf("%d", m), fmt.Sprintf("%d", p))
			e := relErr(m, p)
			if e > maxErr {
				maxErr = e
			}
		}
		cells = append(cells, pct(maxErr))
		t.add(cells...)
	}
	return "Table 2: load access latencies (ns)\n" + t.String()
}

func relErr(m, p sim.Time) float64 {
	d := float64(m) - float64(p)
	if d < 0 {
		d = -d
	}
	return d / float64(p)
}

// MaxError returns the worst relative error across all cells.
func (r Table2Result) MaxError() float64 {
	worst := 0.0
	for _, row := range Table2Rows() {
		for i := range r.Stages {
			if e := relErr(r.Measured[row][i], r.Paper[row][i]); e > worst {
				worst = e
			}
		}
	}
	return worst
}

// Figure10Point is one store-latency measurement.
type Figure10Point struct {
	Sharers int
	Latency sim.Time
}

// Figure10Series is one curve: a stage count with multicast on or off.
type Figure10Series struct {
	Stages    int
	Nodes     int
	Multicast bool
	Points    []Figure10Point
}

// Figure10Result holds the store-latency curves of Figure 10.
type Figure10Result struct {
	Series []Figure10Series
	// PaperMulticast1024 and PaperSinglecast1024 are the paper's
	// estimated end points: 6.3 us and 184 us with 1024 sharers.
	PaperMulticast1024  sim.Time
	PaperSinglecast1024 sim.Time
}

// Figure10 measures store-access latency to a block shared by k nodes,
// for 2/4/6-stage machines with the multicast and gathering functions
// enabled, and for the 6-stage machine with them disabled (the paper's
// estimated comparison).
func Figure10() Figure10Result {
	res := Figure10Result{PaperMulticast1024: 6300, PaperSinglecast1024: 184000}
	cases := []struct {
		nodes     int
		multicast bool
	}{
		{16, true}, {128, true}, {1024, true}, {1024, false},
	}
	for _, c := range cases {
		s := Figure10Series{
			Stages:    topology.StagesForNodes(c.nodes),
			Nodes:     c.nodes,
			Multicast: c.multicast,
		}
		for _, k := range sharerCounts(c.nodes) {
			s.Points = append(s.Points, Figure10Point{
				Sharers: k,
				Latency: storeLatency(c.nodes, c.multicast, k),
			})
		}
		res.Series = append(res.Series, s)
	}
	return res
}

func sharerCounts(nodes int) []int {
	base := []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	var out []int
	for _, k := range base {
		if k < nodes { // the home itself does not share
			out = append(out, k)
		}
	}
	if nodes > 1 {
		out = append(out, nodes-1)
	}
	return dedupeInts(out)
}

func dedupeInts(in []int) []int {
	out := in[:0]
	var last int
	for i, v := range in {
		if i == 0 || v != last {
			out = append(out, v)
		}
		last = v
	}
	return out
}

// storeLatency sets up a block homed at node 0 and cached shared by
// nodes 1..k, then measures a store by node 1 (an ownership request
// whose invalidations fan out to the other sharers).
func storeLatency(nodes int, multicast bool, k int) sim.Time {
	p := newProbe(nodes, multicast)
	addr := p.block(0)
	for i := 1; i <= k; i++ {
		p.access(topology.NodeID(i), addr, false)
	}
	return p.access(1, addr, true)
}

// Render prints the curves.
func (r Figure10Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 10: store access latencies (block shared by k nodes)\n")
	for _, s := range r.Series {
		mode := "multicast+gathering"
		if !s.Multicast {
			mode = "singlecast (estimated comparison)"
		}
		fmt.Fprintf(&b, "\n%d-stage network (%d nodes), %s:\n", s.Stages, s.Nodes, mode)
		t := &table{header: []string{"sharers", "latency"}}
		for _, pt := range s.Points {
			t.add(fmt.Sprintf("%d", pt.Sharers), us(pt.Latency))
		}
		b.WriteString(t.String())
	}
	fmt.Fprintf(&b, "\npaper end points at 1024 sharers: %s with multicast, %s without\n",
		us(r.PaperMulticast1024), us(r.PaperSinglecast1024))
	return b.String()
}

// EndPoint returns the measured latency of the largest sharer count in
// the series matching (nodes, multicast).
func (r Figure10Result) EndPoint(nodes int, multicast bool) (Figure10Point, bool) {
	for _, s := range r.Series {
		if s.Nodes == nodes && s.Multicast == multicast && len(s.Points) > 0 {
			return s.Points[len(s.Points)-1], true
		}
	}
	return Figure10Point{}, false
}
