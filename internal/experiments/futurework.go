package experiments

import (
	"fmt"
	"strings"

	"cenju4/internal/machine"
	"cenju4/internal/npb"
	"cenju4/internal/runner"
	"cenju4/internal/sim"
)

// FutureWorkPoint compares CG at one machine size with and without the
// update-protocol extension.
type FutureWorkPoint struct {
	Nodes          int
	BaseTime       sim.Time
	BaseSpeedup    float64
	UpdateTime     sim.Time
	UpdateSpeedup  float64
	L3Hits         uint64
	UpdateWrites   uint64
	RemoteMissBase float64 // remote misses / accesses, baseline
	RemoteMissUpd  float64
}

// FutureWorkResult is the paper's Section 4.2.3 proposal, implemented
// and measured: "use the main memory as third-level cache and ... an
// update-type protocol for this type of data", so CG's whole-vector
// re-reads are satisfied locally.
type FutureWorkResult struct {
	Points []FutureWorkPoint
}

// FutureWork runs CG dsm(2) (with data mappings) across machine sizes,
// with the shared vector under the invalidate protocol (baseline) and
// under the update-protocol extension.
func FutureWork(cfg Config) FutureWorkResult {
	cfg = cfg.withDefaults()
	type job struct {
		nodes  int
		update bool
	}
	var jobs []job
	for _, nodes := range []int{16, 64, 128} {
		jobs = append(jobs, job{nodes, false}, job{nodes, true})
	}
	// Run 0 is the sequential CG baseline; runs 1.. are the jobs above.
	type fwRun struct {
		result machine.Result
		obs    *runObservation
	}
	runs, panics := runner.Map(cfg.parOpts(), len(jobs)+1, func(i int) fwRun {
		if i == 0 {
			r := runOne(cfg, npb.CG, npb.Seq, 1, false)
			return fwRun{result: r.result, obs: r.obs}
		}
		j := jobs[i-1]
		w, err := npb.Build(npb.Options{
			App:            npb.CG,
			Variant:        npb.DSM2,
			Nodes:          j.nodes,
			DataMapping:    true,
			Iterations:     cfg.Iterations,
			Scale:          cfg.Scale,
			UpdateProtocol: j.update,
		})
		if err != nil {
			panic(err)
		}
		m := machine.New(machine.Config{
			Nodes:      j.nodes,
			Multicast:  true,
			UpdateMode: w.UpdateMode,
			Fault:      cfg.Fault,
		})
		col := cfg.observePre(m)
		r := m.Run(w.Progs)
		label := fmt.Sprintf("CG/dsm(2) nodes=%d update=%t", j.nodes, j.update)
		return fwRun{result: r, obs: cfg.observePost(m, col, label)}
	})
	rethrow(panics)
	for _, run := range runs {
		cfg.Observe.absorb(run.obs)
	}
	seq := runs[0].result.Time
	var res FutureWorkResult
	for i := 0; i < len(jobs); i += 2 {
		nodes := jobs[i].nodes
		base, upd := runs[1+i].result, runs[2+i].result
		var l3, uw uint64
		for _, s := range upd.Protocol {
			l3 += s.L3Hits
			uw += s.UpdateWrites
		}
		bt, ut := base.Totals(), upd.Totals()
		res.Points = append(res.Points, FutureWorkPoint{
			Nodes:          nodes,
			BaseTime:       base.Time,
			BaseSpeedup:    float64(seq) / float64(base.Time),
			UpdateTime:     upd.Time,
			UpdateSpeedup:  float64(seq) / float64(upd.Time),
			L3Hits:         l3,
			UpdateWrites:   uw,
			RemoteMissBase: float64(bt.RemoteMisses) / float64(bt.MemAccesses),
			RemoteMissUpd:  float64(ut.RemoteMisses) / float64(ut.MemAccesses),
		})
	}
	return res
}

// Render prints the comparison.
func (r FutureWorkResult) Render() string {
	var b strings.Builder
	b.WriteString("Future-work extension: CG dsm(2) with the update-type protocol + memory L3\n")
	t := &table{header: []string{"nodes", "base time", "base speedup", "update time", "update speedup", "L3 hits", "update writes", "remote miss/acc base->upd"}}
	for _, p := range r.Points {
		t.add(fmt.Sprintf("%d", p.Nodes),
			us(p.BaseTime), fmt.Sprintf("%.1fx", p.BaseSpeedup),
			us(p.UpdateTime), fmt.Sprintf("%.1fx", p.UpdateSpeedup),
			fmt.Sprintf("%d", p.L3Hits), fmt.Sprintf("%d", p.UpdateWrites),
			fmt.Sprintf("%s -> %s", pct(p.RemoteMissBase), pct(p.RemoteMissUpd)))
	}
	b.WriteString(t.String())
	b.WriteString("\nThe update protocol converts CG's constant per-node remote re-fetch of the\nshared vector into local third-level-cache hits, lifting the saturation the\npaper diagnoses in Section 4.2.3.\n")
	return b.String()
}

// Gain returns the update/base speedup ratio at the largest size.
func (r FutureWorkResult) Gain() float64 {
	if len(r.Points) == 0 {
		return 0
	}
	p := r.Points[len(r.Points)-1]
	return p.UpdateSpeedup / p.BaseSpeedup
}
