module cenju4

go 1.22
