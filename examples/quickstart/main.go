// Quickstart: build a 16-node Cenju-4, walk a block through the
// coherence protocol, and watch the directory.
package main

import (
	"fmt"

	"cenju4"
)

func main() {
	m := cenju4.NewMachine(16)
	fmt.Printf("machine: %d nodes, %d-stage multistage network\n\n", m.Nodes(), m.Stages())

	// Node 0 loads a block homed in its own memory: the directory check
	// is the only cost over a private access (Table 2 row b).
	lat := m.Load(0, 0, 0)
	fmt.Printf("node 0 loads its local block:   %8v  cache=%s  dir{%v}\n",
		lat, m.CacheState(0, 0, 0), m.Directory(0, 0))

	// Node 1 loads the same block remotely; the home forwards to the
	// exclusive owner, both end up Shared.
	lat = m.Load(1, 0, 0)
	fmt.Printf("node 1 loads it remotely:       %8v  cache=%s  dir{%v}\n",
		lat, m.CacheState(1, 0, 0), m.Directory(0, 0))

	// More readers pile in; the fifth sharer flips the directory to the
	// bit-pattern structure.
	for n := 2; n <= 5; n++ {
		m.Load(n, 0, 0)
	}
	fmt.Printf("after 6 readers:                          dir{%v}\n", m.Directory(0, 0))

	// Node 3 stores: an ownership request; invalidations are multicast
	// to the represented set and the replies gathered in-network.
	lat = m.Store(3, 0, 0)
	fmt.Printf("node 3 stores (ownership):      %8v  cache=%s  dir{%v}\n",
		lat, m.CacheState(3, 0, 0), m.Directory(0, 0))
	fmt.Printf("node 1's copy after the store:            cache=%s\n\n", m.CacheState(1, 0, 0))

	s := m.Stats()
	fmt.Printf("protocol: %d home requests, %d invalidation transactions, %d nacks (queuing protocol never nacks)\n",
		s.Requests, s.Invalidations, s.Nacks)
	fmt.Printf("network:  %d messages, %d replies merged in-network by the gathering function\n",
		s.NetworkMessages, s.GatherMerges)
}
