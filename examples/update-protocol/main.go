// Update protocol: the paper's Section 4.2.3 future work, implemented.
// CG saturates because every node re-reads the whole shared vector each
// iteration after its owners rewrite it. With the vector under an
// update-type protocol — stores broadcast the new data into a
// third-level cache in every node's main memory — those re-reads are
// satisfied locally and the saturation lifts.
package main

import (
	"fmt"
	"log"

	"cenju4"
)

func run(nodes int, update bool, scale float64) cenju4.WorkloadResult {
	r, err := cenju4.RunNPB("cg", "dsm2", cenju4.WorkloadOptions{
		Nodes:          nodes,
		Iterations:     3,
		Scale:          scale,
		UpdateProtocol: update,
	})
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	const scale = 0.25
	seq, err := cenju4.RunNPB("cg", "seq", cenju4.WorkloadOptions{Iterations: 3, Scale: scale})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CG dsm(2), scale %.2f (sequential: %v)\n\n", scale, seq.Time)
	fmt.Printf("%8s  %28s  %28s\n", "", "invalidate protocol (Cenju-4)", "update protocol (extension)")
	fmt.Printf("%8s  %12s  %12s  %12s  %12s\n", "nodes", "speedup", "remote miss", "speedup", "remote miss")
	for _, nodes := range []int{16, 64, 128} {
		base := run(nodes, false, scale)
		upd := run(nodes, true, scale)
		fmt.Printf("%8d  %11.1fx  %11.2f%%  %11.1fx  %11.2f%%\n",
			nodes,
			float64(seq.Time)/float64(base.Time), 100*base.MissRatio*base.RemoteMissShare,
			float64(seq.Time)/float64(upd.Time), 100*upd.MissRatio*upd.RemoteMissShare)
	}
	fmt.Println("\nThe gain grows with machine size: the extension attacks exactly the")
	fmt.Println("constant per-node re-fetch cost that caps CG's scaling in Figure 12.")
}
