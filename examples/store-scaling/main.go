// Store scaling: the paper's Figure 10 argument, live. Store latency to
// a widely shared block stays nearly flat when invalidations are
// multicast and their replies gathered in-network, and grows linearly
// with the sharer count when they are not.
package main

import (
	"fmt"
	"time"

	"cenju4"
)

func storeLatency(multicast bool, nodes, sharers int) time.Duration {
	var opts []cenju4.Option
	if !multicast {
		opts = append(opts, cenju4.WithoutMulticast())
	}
	m := cenju4.NewMachine(nodes, opts...)
	// Nodes 1..sharers read the block homed at node 0, then node 1
	// upgrades its copy — an ownership request that invalidates the rest.
	for n := 1; n <= sharers; n++ {
		m.Load(n, 0, 0)
	}
	return m.Store(1, 0, 0)
}

func main() {
	const nodes = 1024
	fmt.Printf("store latency to a block shared by k of %d nodes:\n\n", nodes)
	fmt.Printf("%8s  %18s  %18s\n", "sharers", "multicast+gather", "singlecast")
	for _, k := range []int{2, 4, 16, 64, 256, 1023} {
		with := storeLatency(true, nodes, k)
		without := storeLatency(false, nodes, k)
		fmt.Printf("%8d  %18v  %18v\n", k, with, without)
	}
	fmt.Println("\nThe paper estimates 6.3us vs 184us at 1024 sharers — the multicast and")
	fmt.Println("gathering functions make store latency scale with network stages, not nodes.")
}
