// CG saturation: reproduce the paper's Figure 12 finding that CG stops
// scaling. Every node re-reads the whole shared vector each iteration
// while its own work shrinks with the node count, so the constant
// remote re-fetch cost eventually dominates — the case the paper says
// needs scalable *load* latency (its update-protocol future work), not
// just scalable stores.
package main

import (
	"fmt"
	"log"

	"cenju4"
)

func main() {
	log.SetFlags(0)
	const scale, iters = 0.25, 3

	seq, err := cenju4.RunNPB("cg", "seq", cenju4.WorkloadOptions{Iterations: iters, Scale: scale})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CG dsm(2) with data mappings, scale %.2f (sequential run: %v)\n\n", scale, seq.Time)
	fmt.Printf("%8s  %12s  %10s  %12s  %18s\n", "nodes", "time", "speedup", "efficiency", "remote miss share")

	for _, nodes := range []int{4, 16, 64, 128} {
		r, err := cenju4.RunNPB("cg", "dsm2", cenju4.WorkloadOptions{
			Nodes:      nodes,
			Iterations: iters,
			Scale:      scale,
		})
		if err != nil {
			log.Fatal(err)
		}
		speedup := float64(seq.Time) / float64(r.Time)
		fmt.Printf("%8d  %12v  %9.1fx  %11.1f%%  %17.1f%%\n",
			nodes, r.Time, speedup, 100*speedup/float64(nodes), 100*r.RemoteMissShare)
	}

	fmt.Println("\nCompare BT, which keeps scaling under the same treatment:")
	seqBT, _ := cenju4.RunNPB("bt", "seq", cenju4.WorkloadOptions{Iterations: iters, Scale: scale})
	for _, nodes := range []int{4, 16, 64} {
		r, err := cenju4.RunNPB("bt", "dsm2", cenju4.WorkloadOptions{
			Nodes:      nodes,
			Iterations: iters,
			Scale:      scale,
		})
		if err != nil {
			log.Fatal(err)
		}
		speedup := float64(seqBT.Time) / float64(r.Time)
		fmt.Printf("%8d  %12v  %9.1fx  %11.1f%%\n", nodes, r.Time, speedup, 100*speedup/float64(nodes))
	}
}
