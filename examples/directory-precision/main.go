// Directory precision: reproduce the shape of the paper's Figure 4 —
// how many nodes each imprecise directory scheme believes are sharing,
// as the true sharer count grows, for sharers scattered across the
// whole 1024-node machine and for sharers confined to one 128-node
// group (the multi-user case the bit-pattern structure wins).
package main

import (
	"fmt"

	"cenju4"
)

func main() {
	sharers := []int{1, 2, 4, 8, 16, 32, 64, 128}

	for _, panel := range []struct {
		title string
		group int
	}{
		{"sharers drawn from all 1024 nodes (Figure 4a)", 0},
		{"sharers drawn from one 128-node group (Figure 4b)", 128},
	} {
		fmt.Println(panel.title)
		results := cenju4.DirectoryPrecision(1024, panel.group, 200, sharers)
		fmt.Printf("%10s", "sharers")
		names := cenju4.Schemes()
		for _, n := range names {
			fmt.Printf("  %28s", n)
		}
		fmt.Println()
		for i, k := range sharers {
			fmt.Printf("%10d", k)
			for _, n := range names {
				fmt.Printf("  %28.1f", results[n][i].Represented)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("The pointer + bit-pattern scheme is exact up to 4 sharers and stays")
	fmt.Println("far more precise than the coarse vector when sharers cluster in a group.")
}
