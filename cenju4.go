// Package cenju4 is a simulator of the Cenju-4 distributed shared
// memory architecture (Hosomi, Kanoh, Nakamura, Hirose: "A DSM
// Architecture for a Parallel Computer Cenju-4", HPCA 2000).
//
// It models the full machine: up to 1024 nodes, each with an
// R10000-class processor, a 1 MB MESI secondary cache, main memory with
// a 64-bit-per-block directory that dynamically switches from a pointer
// structure to a bit-pattern structure, and a controller with master,
// home and slave modules running the paper's starvation-free queuing
// coherence protocol — all connected by a multistage network of 4x4
// crossbar switches with hardware multicast and in-network reply
// gathering.
//
// This package is the high-level entry point:
//
//   - NewMachine builds a machine and lets you issue individual shared
//     loads and stores, inspect cache and directory state, and read the
//     protocol statistics;
//   - RunNPB builds and executes the paper's synthetic NAS Parallel
//     Benchmark workloads (BT, CG, FT, SP in seq/mpi/dsm(1)/dsm(2)
//     forms) and reports the metrics of Figures 11-12 and Tables 3-4;
//   - DirectoryPrecision runs the Figure 4 node-map precision
//     comparison.
//
// The full experiment harness that regenerates every table and figure
// of the paper lives in internal/experiments and is driven by
// cmd/cenju4-bench.
package cenju4

import (
	"fmt"
	"time"

	"cenju4/internal/core"
	"cenju4/internal/directory"
	"cenju4/internal/faults"
	"cenju4/internal/fuzz"
	"cenju4/internal/machine"
	"cenju4/internal/metrics"
	"cenju4/internal/npb"
	"cenju4/internal/runner"
	"cenju4/internal/topology"
	"cenju4/internal/trace"
)

// Option configures a Machine.
type Option func(*machine.Config)

// WithoutMulticast disables the network's multicast and gathering
// functions (invalidations fall back to singlecast messages).
func WithoutMulticast() Option {
	return func(c *machine.Config) { c.Multicast = false }
}

// WithNackProtocol switches the coherence protocol to the DASH-style
// nack/retry variant instead of Cenju-4's starvation-free queuing
// protocol.
func WithNackProtocol() Option {
	return func(c *machine.Config) { c.Mode = core.ModeNack }
}

// WithStages overrides the network stage count (default: 2 stages up to
// 16 nodes, 4 up to 128, 6 up to 1024).
func WithStages(n int) Option {
	return func(c *machine.Config) { c.Stages = n }
}

// Machine is an assembled Cenju-4 system driven one access at a time.
// It is not safe for concurrent use; the simulation is deterministic.
type Machine struct {
	m *machine.Machine
}

// NewMachine builds a machine of the given node count (a power of two,
// at most 1024). It panics on an invalid node count, like the
// underlying constructors — configuration errors are programming
// errors.
func NewMachine(nodes int, opts ...Option) *Machine {
	cfg := machine.Config{Nodes: nodes, Multicast: true}
	for _, o := range opts {
		o(&cfg)
	}
	return &Machine{m: machine.New(cfg)}
}

// Nodes returns the machine size.
func (m *Machine) Nodes() int { return m.m.Nodes() }

// Stages returns the network stage count.
func (m *Machine) Stages() int { return m.m.Network().Stages() }

// Load performs a shared-memory load by node from the block at the
// given home node and byte offset, runs the simulation to completion,
// and returns the access latency.
func (m *Machine) Load(node, home int, offset uint64) time.Duration {
	return m.access(node, home, offset, false)
}

// Store performs a shared-memory store (see Load).
func (m *Machine) Store(node, home int, offset uint64) time.Duration {
	return m.access(node, home, offset, true)
}

func (m *Machine) access(node, home int, offset uint64, store bool) time.Duration {
	addr := topology.SharedAddr(topology.NodeID(home), offset)
	ctrl := m.m.Controller(topology.NodeID(node))
	eng := m.m.Engine()
	// Hits complete without a transaction.
	if _, hit := ctrl.Cache().Access(addr, store); hit {
		ctrl.NoteAccessHit(addr, store)
		return 0
	}
	start := eng.Now()
	var end = start
	ctrl.Request(addr, store, func() { end = eng.Now() })
	eng.Run()
	return time.Duration(end - start)
}

// CacheState returns node's MESI state for the block at (home, offset):
// "I", "S", "E" or "M".
func (m *Machine) CacheState(node, home int, offset uint64) string {
	addr := topology.SharedAddr(topology.NodeID(home), offset)
	return m.m.Controller(topology.NodeID(node)).Cache().State(addr).String()
}

// DirectoryState describes the home directory entry of one block.
type DirectoryState struct {
	// State is "C", "D", "Ps", "Pe" or "Pi".
	State string
	// Sharers is the represented node set (a superset of the true
	// sharers once the entry has switched to bit-pattern form).
	Sharers []int
	// BitPattern reports whether the entry uses the bit-pattern
	// structure (false: precise pointer structure).
	BitPattern bool
	// Reserved reports the reservation bit (a queued request waits).
	Reserved bool
}

// Directory returns the directory entry state of the block at (home,
// offset).
func (m *Machine) Directory(home int, offset uint64) DirectoryState {
	addr := topology.SharedAddr(topology.NodeID(home), offset)
	e := m.m.Controller(topology.NodeID(home)).Memory().Entry(addr)
	ds := DirectoryState{
		State:      e.State().String(),
		BitPattern: e.UsesBitPattern(),
		Reserved:   e.Reserved(),
	}
	for _, n := range e.MapMembers(nil, m.m.Nodes()) {
		ds.Sharers = append(ds.Sharers, int(n))
	}
	return ds
}

func (d DirectoryState) String() string {
	form := "pointer"
	if d.BitPattern {
		form = "bit-pattern"
	}
	return fmt.Sprintf("state=%s form=%s sharers=%v reserved=%v", d.State, form, d.Sharers, d.Reserved)
}

// Stats summarizes protocol activity across the machine.
type Stats struct {
	Requests        uint64
	Invalidations   uint64
	Nacks           uint64
	Retries         uint64
	QueuedRequests  uint64
	NetworkMessages uint64
	GatherMerges    uint64
}

// Stats aggregates the controllers' and network's counters.
func (m *Machine) Stats() Stats {
	var s Stats
	for i := 0; i < m.m.Nodes(); i++ {
		cs := m.m.Controller(topology.NodeID(i)).Stats()
		s.Requests += cs.HomeRequests
		s.Invalidations += cs.Invalidations
		s.Nacks += cs.Nacks
		s.Retries += cs.Retries
		s.QueuedRequests += cs.QueuedRequests
	}
	ns := m.m.Network().Stats()
	s.NetworkMessages = ns.Messages
	s.GatherMerges = ns.GatherMerges
	return s
}

// ---------------------------------------------------------------------
// Workloads.

// WorkloadResult summarizes one application run.
type WorkloadResult struct {
	// Time is the simulated makespan.
	Time time.Duration
	// Instructions and MemAccesses are machine totals.
	Instructions uint64
	MemAccesses  uint64
	// MissRatio is secondary-cache misses / memory accesses.
	MissRatio float64
	// Miss shares by address class (fractions of all misses).
	PrivateMissShare, LocalMissShare, RemoteMissShare float64
	// SyncFraction is synchronization time / total processor time.
	SyncFraction float64
	// RewriteRatio is the program-rewriting ratio of this variant.
	RewriteRatio float64
	// Latency holds per-request-kind transaction latency summaries,
	// keyed by kind name ("read-shared", "ownership", ...).
	Latency map[string]LatencyStats
}

// LatencyStats summarizes one request kind's latency distribution.
type LatencyStats struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration // log-bucketed upper bound
	P99   time.Duration
	Max   time.Duration
}

// WorkloadOptions parameterizes RunNPB.
type WorkloadOptions struct {
	// Nodes is the machine size (default 16).
	Nodes int
	// DataMapping applies the shared-data mappings (default true).
	DataMapping *bool
	// Iterations is the outer time-step count (default 2).
	Iterations int
	// Scale is the problem size relative to NPB Class A (default 0.05).
	Scale float64
	// UpdateProtocol runs the application's hot shared region under the
	// update-type protocol extension (the paper's Section 4.2.3
	// proposal): stores broadcast data to a third-level cache in every
	// node's main memory and loads are satisfied locally.
	UpdateProtocol bool
	// Fault is a deterministic fault plan — a preset name like
	// "light-loss" or a k=v spec like "drop=0.02,seed=7" (see
	// internal/faults). Recoverable plans only: the run must complete,
	// so an unrecoverable plan aborts with the machine watchdog's
	// diagnosis. Empty means fault-free.
	Fault string
	// IntraParallel shards the simulated nodes over IntraParallel
	// conservative-PDES partitions that advance in parallel windows (see
	// internal/psim). 0 or 1 selects the sequential kernel. Results are
	// byte-identical at every setting; more shards only buys wall-clock
	// time when IntraWorkers > 1 and spare cores exist. Must be a power
	// of two dividing Nodes, and is incompatible with the "mpi" variant
	// (its Recv has zero lookahead), with Fault, and with Trace.
	IntraParallel int
	// IntraWorkers caps the OS threads running shard windows (default:
	// min(IntraParallel, GOMAXPROCS)). Callers nesting RunNPB inside
	// their own worker pools should pass runner.NestedBudget(outer,
	// IntraParallel) so total parallelism stays within GOMAXPROCS.
	IntraWorkers int
	// Metrics, when non-nil, receives the run's observability registry
	// (counters, watermark gauges, latency histograms) — see
	// internal/metrics.
	Metrics *metrics.Registry
	// Trace, when non-nil, collects the protocol event stream; export it
	// with trace.WriteChrome for Perfetto.
	Trace *trace.Collector
}

// RunNPB builds and runs one of the paper's workloads. app is one of
// "bt", "cg", "ft", "sp"; variant is "seq", "mpi", "dsm1" or "dsm2".
func RunNPB(app, variant string, opts WorkloadOptions) (WorkloadResult, error) {
	a, err := parseApp(app)
	if err != nil {
		return WorkloadResult{}, err
	}
	v, err := parseVariant(variant)
	if err != nil {
		return WorkloadResult{}, err
	}
	if opts.Nodes == 0 {
		opts.Nodes = 16
	}
	if v == npb.Seq {
		opts.Nodes = 1
	}
	mapped := true
	if opts.DataMapping != nil {
		mapped = *opts.DataMapping
	}
	w, err := npb.Build(npb.Options{
		App:            a,
		Variant:        v,
		Nodes:          opts.Nodes,
		DataMapping:    mapped,
		Iterations:     opts.Iterations,
		Scale:          opts.Scale,
		UpdateProtocol: opts.UpdateProtocol,
	})
	if err != nil {
		return WorkloadResult{}, err
	}
	var fault faults.Spec
	if opts.Fault != "" {
		fault, err = faults.ParseSpec(opts.Fault)
		if err != nil {
			return WorkloadResult{}, err
		}
		fault = fault.Normalize()
		if err := fault.Validate(); err != nil {
			return WorkloadResult{}, err
		}
	}
	if opts.IntraParallel > 1 {
		if k := opts.IntraParallel; k&(k-1) != 0 || k > opts.Nodes {
			return WorkloadResult{}, fmt.Errorf("cenju4: IntraParallel %d must be a power of two <= %d nodes", k, opts.Nodes)
		}
		if v == npb.MPI {
			return WorkloadResult{}, fmt.Errorf("cenju4: the mpi variant uses blocking Recv, which has zero lookahead; intra-run parallelism needs IntraParallel=1")
		}
		if opts.Fault != "" {
			return WorkloadResult{}, fmt.Errorf("cenju4: fault injection is unsupported under IntraParallel > 1")
		}
		if opts.Trace != nil {
			return WorkloadResult{}, fmt.Errorf("cenju4: protocol tracing is unsupported under IntraParallel > 1")
		}
		if opts.IntraWorkers == 0 {
			opts.IntraWorkers = runner.NestedBudget(1, opts.IntraParallel)
		}
	}
	m := machine.New(machine.Config{
		Nodes:         opts.Nodes,
		Multicast:     true,
		UpdateMode:    w.UpdateMode,
		Fault:         fault,
		IntraParallel: opts.IntraParallel,
		IntraWorkers:  opts.IntraWorkers,
	})
	if opts.Trace != nil {
		m.SetTracer(opts.Trace.Tracer())
	}
	r := m.Run(w.Progs)
	if opts.Metrics != nil {
		m.MetricsInto(opts.Metrics)
	}
	tot := r.Totals()
	misses := float64(tot.Misses)
	if misses == 0 {
		misses = 1
	}
	lat := make(map[string]LatencyStats)
	for kind, h := range m.LatencyHistograms() {
		lat[kind.String()] = LatencyStats{
			Count: h.Count(),
			Mean:  time.Duration(h.Mean()),
			P50:   time.Duration(h.Percentile(50)),
			P99:   time.Duration(h.Percentile(99)),
			Max:   time.Duration(h.Max()),
		}
	}
	return WorkloadResult{
		Time:             time.Duration(r.Time),
		Instructions:     tot.Instructions,
		MemAccesses:      tot.MemAccesses,
		MissRatio:        tot.MissRatio(),
		PrivateMissShare: float64(tot.PrivateMisses) / misses,
		LocalMissShare:   float64(tot.LocalMisses) / misses,
		RemoteMissShare:  float64(tot.RemoteMisses) / misses,
		SyncFraction:     float64(tot.SyncTime) / (float64(r.Time) * float64(opts.Nodes)),
		RewriteRatio:     w.Meta.RewriteRatio,
		Latency:          lat,
	}, nil
}

func parseApp(s string) (npb.App, error) {
	a, err := npb.ParseApp(s)
	if err != nil {
		return 0, fmt.Errorf("cenju4: unknown application %q (want bt, cg, ft or sp)", s)
	}
	return a, nil
}

func parseVariant(s string) (npb.Variant, error) {
	v, err := npb.ParseVariant(s)
	if err != nil {
		return 0, fmt.Errorf("cenju4: unknown variant %q (want seq, mpi, dsm1 or dsm2)", s)
	}
	return v, nil
}

// ---------------------------------------------------------------------
// Directory precision (Figure 4).

// PrecisionPoint is one precision measurement: Sharers true sharers
// decoded to an average of Represented nodes.
type PrecisionPoint struct {
	Sharers     int
	Represented float64
}

// DirectoryPrecision runs the Figure 4 Monte-Carlo comparison: for each
// scheme (coarse vector, hierarchical bit-map, Cenju-4's pointer +
// bit-pattern), the average represented-set size per sharer count.
// groupSize confines sharers to one aligned group (0 = whole machine).
func DirectoryPrecision(totalNodes, groupSize, trials int, sharerCounts []int) map[string][]PrecisionPoint {
	cfg := directory.PrecisionConfig{
		TotalNodes: totalNodes,
		GroupSize:  groupSize,
		Trials:     trials,
		Seed:       1,
	}
	out := make(map[string][]PrecisionPoint)
	for _, s := range directory.Schemes() {
		for _, p := range directory.EvaluatePrecision(s, cfg, sharerCounts) {
			out[s.Name] = append(out[s.Name], PrecisionPoint{p.Sharers, p.Represented})
		}
	}
	return out
}

// Schemes returns the names of the compared directory schemes.
func Schemes() []string {
	var names []string
	for _, s := range directory.Schemes() {
		names = append(names, s.Name)
	}
	return names
}

// Validate checks the machine's structural coherence invariants (single
// writer, directory/cache agreement, drained queues). Call it when the
// simulation is idle — after Load/Store returned, between workload
// phases.
func (m *Machine) Validate() error { return m.m.Validate() }

// FuzzSmoke runs a bounded randomized coherence sweep (every traffic
// pattern against every protocol configuration cell) with the
// consistency oracle attached, and returns an error describing the
// first failure, if any. It is a cheap machine-health check; the full
// harness lives in internal/fuzz and cmd/cenju4-fuzz.
func FuzzSmoke(seed uint64, ops int) error {
	rep := fuzz.Run(fuzz.Options{Seed: seed, Ops: ops})
	if rep.Failed() {
		return fmt.Errorf("fuzz smoke (seed %d):\n%s", seed, rep.String())
	}
	return nil
}
