package cenju4

// One benchmark per table and figure of the paper's evaluation, plus
// the ablation studies. Each benchmark regenerates its experiment and
// reports the headline metric the paper's narrative rests on, so
// `go test -bench=. -benchmem` doubles as a reproduction smoke check.
// The benchmarks run under the Quick preset; EXPERIMENTS.md records a
// Full-preset run (cmd/cenju4-bench -full).

import (
	"testing"

	"cenju4/internal/experiments"
	"cenju4/internal/npb"
)

func benchCfg() experiments.Config { return experiments.Quick() }

// skipHeavy excludes the application-scale reproductions (seconds per
// iteration) from -short runs, so quick lanes still exercise the
// microbenchmarks without paying for full workload sweeps.
func skipHeavy(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("heavyweight reproduction: skipped in -short mode")
	}
}

// BenchmarkTable1 regenerates the directory-scheme characteristics.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table1()
		if len(r.Rows) != 6 {
			b.Fatal("table 1 incomplete")
		}
	}
}

// BenchmarkFigure4 regenerates the node-map precision comparison and
// reports the bit-pattern scheme's overshoot at 32 sharers in a
// 128-node group.
func BenchmarkFigure4(b *testing.B) {
	var overshoot float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure4(benchCfg())
		for _, p := range r.PanelB["bit-pattern (42b)"] {
			if p.Sharers == 32 {
				overshoot = p.Represented / 32
			}
		}
	}
	b.ReportMetric(overshoot, "overshoot@32sharers")
}

// BenchmarkTable2 regenerates the load-latency table and reports the
// worst relative error against the paper's measured values.
func BenchmarkTable2(b *testing.B) {
	skipHeavy(b)
	var maxErr float64
	for i := 0; i < b.N; i++ {
		maxErr = experiments.Table2().MaxError()
	}
	b.ReportMetric(100*maxErr, "max-err-%")
}

// BenchmarkFigure10 regenerates the store-latency curves and reports
// the 1023-sharer end points (paper: 6.3us with multicast, 184us
// without).
func BenchmarkFigure10(b *testing.B) {
	skipHeavy(b)
	var mc, sc float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure10()
		if p, ok := r.EndPoint(1024, true); ok {
			mc = p.Latency.Microseconds()
		}
		if p, ok := r.EndPoint(1024, false); ok {
			sc = p.Latency.Microseconds()
		}
	}
	b.ReportMetric(mc, "multicast-us")
	b.ReportMetric(sc, "singlecast-us")
}

// BenchmarkFigure11 regenerates the DSM-vs-MPI comparison and reports
// BT's dsm(2) parallel efficiency (paper: 97%).
func BenchmarkFigure11(b *testing.B) {
	skipHeavy(b)
	var eff float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure11(benchCfg())
		if e, ok := r.Find(npb.BT, npb.DSM2, true); ok {
			eff = e.Efficiency
		}
	}
	b.ReportMetric(100*eff, "bt-dsm2-eff-%")
}

// BenchmarkFigure12 regenerates the speedup curves and reports CG's
// gain from its two largest machine sizes (saturation: close to 1x).
func BenchmarkFigure12(b *testing.B) {
	skipHeavy(b)
	var gain float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure12(benchCfg())
		if s, ok := r.Find(npb.CG); ok {
			last := len(s.Speedups) - 1
			gain = s.Speedups[last] / s.Speedups[last-1]
		}
	}
	b.ReportMetric(gain, "cg-64to128-gain")
}

// BenchmarkTable3 regenerates the miss-characteristics table and
// reports BT dsm(1)'s remote-miss-share drop from data mappings.
func BenchmarkTable3(b *testing.B) {
	skipHeavy(b)
	var drop float64
	for i := 0; i < b.N; i++ {
		r := experiments.Table3(benchCfg())
		un, _ := r.Find(npb.BT, npb.DSM1, false)
		ma, _ := r.Find(npb.BT, npb.DSM1, true)
		drop = un.Remote - ma.Remote
	}
	b.ReportMetric(100*drop, "bt-remote-share-drop-%")
}

// BenchmarkTable4 regenerates the application-characteristics table and
// reports CG's remote-miss-share increase from 16 to 128 nodes (the
// paper measures +71.5 points).
func BenchmarkTable4(b *testing.B) {
	skipHeavy(b)
	var rise float64
	for i := 0; i < b.N; i++ {
		r := experiments.Table4(benchCfg())
		small, _ := r.Find(npb.CG, 16)
		big, _ := r.Find(npb.CG, 128)
		rise = big.MissRemote - small.MissRemote
	}
	b.ReportMetric(100*rise, "cg-remote-share-rise-%")
}

// BenchmarkFutureWorkUpdateProtocol measures the paper's Section 4.2.3
// proposal — update-type protocol plus main-memory third-level caches —
// and reports its speedup gain over the baseline at 128 nodes.
func BenchmarkFutureWorkUpdateProtocol(b *testing.B) {
	skipHeavy(b)
	var gain float64
	for i := 0; i < b.N; i++ {
		gain = experiments.FutureWork(benchCfg()).Gain()
	}
	b.ReportMetric(gain, "cg-update-gain-128")
}

// BenchmarkAblationNack compares the queuing and nack protocols under a
// hot-block storm and reports the nack protocol's worst retry count.
func BenchmarkAblationNack(b *testing.B) {
	var maxRetries float64
	for i := 0; i < b.N; i++ {
		r := experiments.AblationNack(32)
		maxRetries = float64(r.MaxRetries)
	}
	b.ReportMetric(maxRetries, "nack-max-retries")
}

// BenchmarkAblationSinglecastThreshold explores the optimization the
// paper suggests but did not implement.
func BenchmarkAblationSinglecastThreshold(b *testing.B) {
	var points float64
	for i := 0; i < b.N; i++ {
		points = float64(len(experiments.AblationSinglecastThreshold(benchCfg(), 64).Points))
	}
	b.ReportMetric(points, "points")
}

// BenchmarkAblationImprecision measures the bit-pattern map's
// invalidation overshoot on the running protocol.
func BenchmarkAblationImprecision(b *testing.B) {
	skipHeavy(b)
	var worst float64
	for i := 0; i < b.N; i++ {
		r := experiments.AblationImprecision(benchCfg(), 1024, 7)
		for _, p := range r.Points {
			if o := float64(p.Targets) / float64(p.Sharers); o > worst {
				worst = o
			}
		}
	}
	b.ReportMetric(worst, "worst-overshoot")
}
