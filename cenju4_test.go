package cenju4

import (
	"testing"
	"time"
)

func TestMachineLoadStoreLifecycle(t *testing.T) {
	m := NewMachine(16)
	if m.Nodes() != 16 || m.Stages() != 2 {
		t.Fatalf("geometry: %d nodes, %d stages", m.Nodes(), m.Stages())
	}
	// Cold load by the home node: Table 2 row b (610 ns).
	if lat := m.Load(0, 0, 0); lat != 610*time.Nanosecond {
		t.Fatalf("local clean load = %v, want 610ns", lat)
	}
	if st := m.CacheState(0, 0, 0); st != "E" {
		t.Fatalf("state = %s, want E", st)
	}
	// Second load hits.
	if lat := m.Load(0, 0, 0); lat != 0 {
		t.Fatalf("hit latency = %v, want 0", lat)
	}
	// A remote reader shares the block.
	m.Load(1, 0, 0)
	if st := m.CacheState(1, 0, 0); st != "S" {
		t.Fatalf("reader state = %s, want S", st)
	}
	d := m.Directory(0, 0)
	if d.State != "C" || len(d.Sharers) != 2 || d.BitPattern {
		t.Fatalf("directory = %v", d)
	}
	// A third node stores: invalidations fly.
	m.Store(2, 0, 0)
	if st := m.CacheState(1, 0, 0); st != "I" {
		t.Fatalf("sharer not invalidated: %s", st)
	}
	d = m.Directory(0, 0)
	if d.State != "D" || len(d.Sharers) != 1 || d.Sharers[0] != 2 {
		t.Fatalf("directory after store = %v", d)
	}
	s := m.Stats()
	if s.Requests == 0 || s.Invalidations == 0 || s.NetworkMessages == 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Nacks != 0 {
		t.Fatal("queuing protocol nacked")
	}
	if d.String() == "" {
		t.Fatal("empty directory string")
	}
}

func TestMachineOptions(t *testing.T) {
	m := NewMachine(16, WithStages(4))
	if m.Stages() != 4 {
		t.Fatalf("stages = %d", m.Stages())
	}
	m = NewMachine(16, WithoutMulticast())
	for i := 1; i < 8; i++ {
		m.Load(i, 0, 0)
	}
	m.Store(1, 0, 0)
	if st := m.CacheState(5, 0, 0); st != "I" {
		t.Fatalf("singlecast invalidation failed: %s", st)
	}
	m = NewMachine(16, WithNackProtocol())
	m.Load(1, 0, 0) // sanity: protocol still works
	if st := m.CacheState(1, 0, 0); st != "E" {
		t.Fatalf("nack protocol load: %s", st)
	}
}

func TestRunNPB(t *testing.T) {
	r, err := RunNPB("cg", "dsm2", WorkloadOptions{Nodes: 8, Iterations: 1, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if r.Time == 0 || r.MemAccesses == 0 || r.MissRatio <= 0 {
		t.Fatalf("result = %+v", r)
	}
	if r.RewriteRatio <= 0 {
		t.Fatal("no rewrite ratio")
	}
	shares := r.PrivateMissShare + r.LocalMissShare + r.RemoteMissShare
	if shares < 0.99 || shares > 1.01 {
		t.Fatalf("miss shares sum to %.3f", shares)
	}
	// Sequential runs force one node.
	r, err = RunNPB("bt", "seq", WorkloadOptions{Nodes: 8, Iterations: 1, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if r.RemoteMissShare != 0 || r.LocalMissShare != 0 {
		t.Fatal("seq run touched shared memory")
	}
}

func TestRunNPBErrors(t *testing.T) {
	if _, err := RunNPB("lu", "dsm2", WorkloadOptions{}); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := RunNPB("bt", "openmp", WorkloadOptions{}); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestRunNPBUpdateProtocol(t *testing.T) {
	base, err := RunNPB("cg", "dsm2", WorkloadOptions{Nodes: 16, Iterations: 2, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	upd, err := RunNPB("cg", "dsm2", WorkloadOptions{Nodes: 16, Iterations: 2, Scale: 0.05, UpdateProtocol: true})
	if err != nil {
		t.Fatal(err)
	}
	if upd.RemoteMissShare >= base.RemoteMissShare {
		t.Errorf("update protocol did not cut remote misses: %.3f vs %.3f",
			upd.RemoteMissShare, base.RemoteMissShare)
	}
	if _, ok := upd.Latency["update-write"]; !ok {
		t.Errorf("no update-write latency recorded: %v", upd.Latency)
	}
}

func TestLatencyStatsPresent(t *testing.T) {
	r, err := RunNPB("bt", "dsm1", WorkloadOptions{Nodes: 8, Iterations: 1, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	rs, ok := r.Latency["read-shared"]
	if !ok || rs.Count == 0 || rs.P99 < rs.P50 || rs.Max < rs.P99/2 {
		t.Fatalf("latency stats inconsistent: %+v", r.Latency)
	}
}

func TestDirectoryPrecisionFacade(t *testing.T) {
	pts := DirectoryPrecision(1024, 128, 30, []int{4, 32})
	if len(pts) != 3 {
		t.Fatalf("%d schemes", len(pts))
	}
	for name, series := range pts {
		if len(series) != 2 {
			t.Fatalf("%s: %d points", name, len(series))
		}
		if series[0].Represented < 4 {
			t.Fatalf("%s: represented %.1f < sharers", name, series[0].Represented)
		}
	}
	if len(Schemes()) != 3 {
		t.Fatal("scheme names")
	}
}
